/**
 * @file
 * Tests for the reuse-aware reorder scheduler, including the paper's
 * Fig. 13 worked example (11 loads naive -> 8 loads RARS).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/rars.h"

namespace pade {
namespace {

/** All (score, V) needs must be served by the rounds. */
void
expectCovers(const RarsSchedule &sched,
             const std::vector<std::vector<int>> &needs, int per_score)
{
    // Replay the schedule: a score consumes a loaded V if it still
    // needs it and has a slot this round.
    std::vector<std::set<int>> pending;
    for (const auto &n : needs)
        pending.emplace_back(n.begin(), n.end());

    for (const auto &round : sched.rounds) {
        std::vector<int> slots(needs.size(), per_score);
        for (int v : round) {
            for (size_t s = 0; s < needs.size(); s++) {
                if (slots[s] > 0 && pending[s].count(v)) {
                    pending[s].erase(v);
                    slots[s]--;
                }
            }
        }
    }
    for (size_t s = 0; s < needs.size(); s++)
        EXPECT_TRUE(pending[s].empty()) << "score " << s;
}

TEST(Rars, PaperFig13Example)
{
    // S0 needs V0-V3; S1 needs V2,V3,V4,V7; S2 needs V4-V7;
    // S3 needs V2,V3,V4,V7. Two V vectors per score per round.
    const std::vector<std::vector<int>> needs = {
        {0, 1, 2, 3}, {2, 3, 4, 7}, {4, 5, 6, 7}, {2, 3, 4, 7}};

    const RarsSchedule naive = scheduleNaive(needs, 2);
    EXPECT_EQ(naive.loads, 11u);

    const RarsSchedule rars = scheduleRars(needs, 2);
    EXPECT_EQ(rars.loads, 8u);
    expectCovers(rars, needs, 2);

    // Paper reports a 30% reduction on this example.
    const double reduction = 1.0 -
        static_cast<double>(rars.loads) / naive.loads;
    EXPECT_NEAR(reduction, 0.27, 0.05);
}

TEST(Rars, NaiveCoversAllNeeds)
{
    const std::vector<std::vector<int>> needs = {
        {0, 1, 2, 3}, {2, 3, 4, 7}, {4, 5, 6, 7}, {2, 3, 4, 7}};
    expectCovers(scheduleNaive(needs, 2), needs, 2);
}

TEST(Rars, BeatsNaiveInAggregate)
{
    // RARS is a greedy heuristic (as in the paper's FSM): it wins on
    // reuse-heavy patterns but is not per-instance optimal, so the
    // property is aggregate improvement plus a tight per-trial bound.
    Rng rng(42);
    uint64_t total_naive = 0;
    uint64_t total_rars = 0;
    for (int trial = 0; trial < 50; trial++) {
        const int scores = 2 + static_cast<int>(rng.below(6));
        const int vs = 4 + static_cast<int>(rng.below(12));
        std::vector<std::vector<int>> needs(scores);
        for (int s = 0; s < scores; s++) {
            for (int v = 0; v < vs; v++)
                if (rng.bernoulli(0.4))
                    needs[s].push_back(v);
            if (needs[s].empty())
                needs[s].push_back(static_cast<int>(rng.below(vs)));
        }
        const int per = 1 + static_cast<int>(rng.below(3));
        const RarsSchedule naive = scheduleNaive(needs, per);
        const RarsSchedule rars = scheduleRars(needs, per);
        EXPECT_LE(rars.loads, naive.loads + 2) << "trial " << trial;
        expectCovers(rars, needs, per);
        total_naive += naive.loads;
        total_rars += rars.loads;
    }
    EXPECT_LT(total_rars, total_naive);
}

TEST(Rars, DisjointNeedsNoSaving)
{
    // Nothing is shared: both schedules load each V exactly once.
    const std::vector<std::vector<int>> needs = {{0, 1}, {2, 3}};
    EXPECT_EQ(scheduleNaive(needs, 2).loads, 4u);
    EXPECT_EQ(scheduleRars(needs, 2).loads, 4u);
}

TEST(Rars, FullySharedLoadsOnce)
{
    // Every score wants the same Vs: one round serves everyone.
    const std::vector<std::vector<int>> needs = {
        {0, 1}, {0, 1}, {0, 1}};
    const RarsSchedule rars = scheduleRars(needs, 2);
    EXPECT_EQ(rars.loads, 2u);
    EXPECT_EQ(rars.rounds.size(), 1u);
}

TEST(Rars, PerScoreOneSerializes)
{
    const std::vector<std::vector<int>> needs = {{0, 1, 2}};
    const RarsSchedule rars = scheduleRars(needs, 1);
    EXPECT_EQ(rars.loads, 3u);
    EXPECT_EQ(rars.rounds.size(), 3u);
    expectCovers(rars, needs, 1);
}

TEST(Rars, EmptyNeeds)
{
    const std::vector<std::vector<int>> needs = {{}, {}};
    EXPECT_EQ(scheduleRars(needs, 2).loads, 0u);
    EXPECT_EQ(scheduleNaive(needs, 2).loads, 0u);
}

TEST(Rars, SingleScoreLoadsEachVOnce)
{
    const std::vector<std::vector<int>> needs = {{3, 1, 2, 0}};
    const RarsSchedule rars = scheduleRars(needs, 4);
    ASSERT_EQ(rars.rounds.size(), 1u);
    EXPECT_EQ(rars.loads, 4u);
}

} // namespace
} // namespace pade

/**
 * @file
 * Tests for BUI-GF threshold semantics (paper Eq. 4, Fig. 7).
 */

#include <gtest/gtest.h>

#include "core/guard_filter.h"

namespace pade {
namespace {

TEST(GuardFilter, NoPruneBeforeFirstObservation)
{
    GuardFilter g(0.5, 5.0, 0.1);
    EXPECT_FALSE(g.shouldPrune(-1000000));
    EXPECT_EQ(g.threshold(), INT64_MIN);
}

TEST(GuardFilter, ThresholdTracksMaxLowerBound)
{
    GuardFilter g(1.0, 5.0, 0.1); // margin = 5 / 0.1 = 50 int units
    g.observe(100);
    EXPECT_EQ(g.threshold(), 50);
    g.observe(40); // lower LB does not move the max
    EXPECT_EQ(g.threshold(), 50);
    g.observe(200);
    EXPECT_EQ(g.threshold(), 150);
}

TEST(GuardFilter, PruneComparesUpperBound)
{
    GuardFilter g(1.0, 5.0, 0.1);
    g.observe(100); // threshold 50
    EXPECT_TRUE(g.shouldPrune(49));
    EXPECT_FALSE(g.shouldPrune(50));
    EXPECT_FALSE(g.shouldPrune(51));
}

TEST(GuardFilter, SmallerAlphaPrunesMore)
{
    // alpha = 0.2 -> margin 10; alpha = 1.0 -> margin 50.
    GuardFilter aggressive(0.2, 5.0, 0.1);
    GuardFilter conservative(1.0, 5.0, 0.1);
    aggressive.observe(100);
    conservative.observe(100);
    // UB 60: above the aggressive threshold (90)? No: 60 < 90 pruned;
    // conservative threshold 50: 60 survives.
    EXPECT_TRUE(aggressive.shouldPrune(60));
    EXPECT_FALSE(conservative.shouldPrune(60));
}

TEST(GuardFilter, AlphaZeroPrunesBelowMax)
{
    GuardFilter g(0.0, 5.0, 0.1);
    g.observe(100);
    EXPECT_TRUE(g.shouldPrune(99));
    EXPECT_FALSE(g.shouldPrune(100));
}

TEST(GuardFilter, UpdatesCountOnlyIncreases)
{
    GuardFilter g(0.5, 5.0, 0.1);
    g.observe(10);
    g.observe(5);
    g.observe(20);
    g.observe(20);
    EXPECT_EQ(g.updates(), 2u);
}

TEST(GuardFilter, LogitScaleConvertsMargin)
{
    // Same alpha/radius, coarser scale -> smaller integer margin.
    GuardFilter fine(1.0, 5.0, 0.01);   // margin 500
    GuardFilter coarse(1.0, 5.0, 1.0);  // margin 5
    fine.observe(1000);
    coarse.observe(1000);
    EXPECT_EQ(fine.threshold(), 500);
    EXPECT_EQ(coarse.threshold(), 995);
}

TEST(GuardFilter, NegativeScoresHandled)
{
    GuardFilter g(1.0, 5.0, 1.0); // margin 5
    g.observe(-100);
    EXPECT_EQ(g.threshold(), -105);
    EXPECT_TRUE(g.shouldPrune(-106));
    EXPECT_FALSE(g.shouldPrune(-100));
}

TEST(GuardFilter, MaxLowerBoundAccessor)
{
    GuardFilter g(0.5, 5.0, 1.0);
    g.observe(7);
    g.observe(3);
    EXPECT_EQ(g.maxLowerBound(), 7);
}

} // namespace
} // namespace pade

/**
 * @file
 * Tests for model presets and the synthetic workload generator.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "attention/reference.h"
#include "workload/generator.h"
#include "workload/model_config.h"

namespace pade {
namespace {

TEST(ModelConfig, PresetsCoverPaperSuite)
{
    const auto models = allModels();
    ASSERT_EQ(models.size(), 7u);
    EXPECT_EQ(models[0].name, "Llama2-7B");
    EXPECT_EQ(models[1].name, "Llama3-8B");
}

TEST(ModelConfig, GqaDetected)
{
    EXPECT_FALSE(llama2_7b().isGqa());
    EXPECT_TRUE(llama3_8b().isGqa());
    EXPECT_EQ(llama3_8b().kv_heads, 8);
}

TEST(ModelConfig, HiddenDimension)
{
    EXPECT_EQ(llama2_7b().hidden(), 4096);
}

TEST(ModelConfig, LookupByName)
{
    EXPECT_EQ(modelByName("Qwen-7B").head_dim, 128);
    EXPECT_THROW(modelByName("nope"), std::out_of_range);
}

TEST(Datasets, SequenceLengths)
{
    EXPECT_EQ(dsMmlu().seq_len, 512);
    EXPECT_EQ(dsWikitext2().seq_len, 2048);
    EXPECT_GT(dsDolly().seq_len, 15000);
    EXPECT_GT(dsInfiniteBench().seq_len, 200000);
    EXPECT_GT(dsNiah1M().seq_len, 1000000);
}

TEST(Generator, ShapesMatchSpec)
{
    WorkloadSpec spec;
    spec.seq_len = 100;
    spec.query_len = 4;
    spec.head_dim = 32;
    const AttentionHead head = generateHead(spec);
    EXPECT_EQ(head.q.rows(), 4);
    EXPECT_EQ(head.q.cols(), 32);
    EXPECT_EQ(head.k.rows(), 100);
    EXPECT_EQ(head.v.rows(), 100);
    EXPECT_NEAR(head.scale, 1.0f / std::sqrt(32.0f), 1e-6f);
}

TEST(Generator, DeterministicForSeed)
{
    WorkloadSpec spec;
    spec.seq_len = 50;
    spec.seed = 77;
    const AttentionHead a = generateHead(spec);
    const AttentionHead b = generateHead(spec);
    EXPECT_TRUE(a.k == b.k);
    EXPECT_TRUE(a.q == b.q);
}

TEST(Generator, SeedChangesData)
{
    WorkloadSpec spec;
    spec.seq_len = 50;
    spec.seed = 1;
    const AttentionHead a = generateHead(spec);
    spec.seed = 2;
    const AttentionHead b = generateHead(spec);
    EXPECT_FALSE(a.k == b.k);
}

TEST(Generator, SinkTokenDominatesWithLocality)
{
    WorkloadSpec spec;
    spec.seq_len = 256;
    spec.query_len = 4;
    spec.locality = 0.9;
    spec.seed = 3;
    const AttentionHead head = generateHead(spec);
    const MatrixF logits = attentionLogits(head.q, head.k, head.scale);
    // Token 0 (the sink) should beat the median token for every query.
    for (int i = 0; i < 4; i++) {
        std::vector<float> row(logits.row(i).begin(),
                               logits.row(i).end());
        std::nth_element(row.begin(), row.begin() + row.size() / 2,
                         row.end());
        EXPECT_GT(logits.at(i, 0), row[row.size() / 2]);
    }
}

TEST(Generator, OracleSparsityGrowsWithConcentration)
{
    WorkloadSpec flat;
    flat.seq_len = 512;
    flat.query_len = 4;
    flat.concentration = 0.3;
    flat.seed = 4;
    WorkloadSpec spiky = flat;
    spiky.concentration = 1.6;
    const double s_flat = oracleSparsity(generateHead(flat), 1e-3);
    const double s_spiky = oracleSparsity(generateHead(spiky), 1e-3);
    EXPECT_GT(s_spiky, s_flat);
}

TEST(Generator, QatFlattensDistribution)
{
    WorkloadSpec normal;
    normal.seq_len = 512;
    normal.query_len = 4;
    normal.concentration = 1.2;
    normal.seed = 5;
    WorkloadSpec qat = normal;
    qat.qat_uniform = true;
    EXPECT_LT(oracleSparsity(generateHead(qat), 1e-3),
              oracleSparsity(generateHead(normal), 1e-3));
}

TEST(Generator, QuantizeHeadProducesPlanes)
{
    WorkloadSpec spec;
    spec.seq_len = 64;
    spec.query_len = 2;
    spec.head_dim = 64;
    const QuantizedHead qh = quantizeHead(generateHead(spec), 8);
    EXPECT_EQ(qh.k_planes.numPlanes(), 8);
    EXPECT_EQ(qh.k_planes.numRows(), 64);
    EXPECT_GT(qh.logit_scale, 0.0f);
}

TEST(Generator, QuantizedLogitsTrackFloatLogits)
{
    WorkloadSpec spec;
    spec.seq_len = 128;
    spec.query_len = 4;
    spec.seed = 6;
    const AttentionHead head = generateHead(spec);
    const QuantizedHead qh = quantizeHead(head, 8);
    const MatrixF ref = attentionLogits(head.q, head.k, head.scale);

    double err = 0.0;
    double den = 0.0;
    for (int i = 0; i < 4; i++) {
        for (int j = 0; j < 128; j++) {
            int64_t acc = 0;
            for (int d = 0; d < spec.head_dim; d++)
                acc += static_cast<int64_t>(qh.q.values.at(i, d)) *
                       qh.k.values.at(j, d);
            const double logit = qh.logit_scale *
                static_cast<double>(acc);
            err += (logit - ref.at(i, j)) * (logit - ref.at(i, j));
            den += static_cast<double>(ref.at(i, j)) * ref.at(i, j);
        }
    }
    EXPECT_LT(std::sqrt(err / den), 0.05);
}

TEST(Generator, FromPresetsCopiesKnobs)
{
    const auto spec = WorkloadSpec::fromPresets(llama2_7b(), dsMmlu(),
                                                8, 9);
    EXPECT_EQ(spec.seq_len, 512);
    EXPECT_EQ(spec.head_dim, 128);
    EXPECT_DOUBLE_EQ(spec.concentration, 1.25);
    EXPECT_EQ(spec.seed, 9u);
}

TEST(PoissonTrace, DeterministicAndSorted)
{
    TraceSpec spec;
    spec.num_requests = 64;
    spec.rate_per_s = 500.0;
    spec.seed = 9;
    const auto a = poissonArrivalTrace(spec);
    const auto b = poissonArrivalTrace(spec);
    ASSERT_EQ(a.size(), 64u);
    for (std::size_t i = 0; i < a.size(); i++) {
        EXPECT_EQ(a[i].arrival_ms, b[i].arrival_ms);
        EXPECT_EQ(a[i].prompt_len, b[i].prompt_len);
        EXPECT_EQ(a[i].decode_steps, b[i].decode_steps);
        EXPECT_EQ(a[i].seed, b[i].seed);
        if (i > 0) {
            EXPECT_GE(a[i].arrival_ms, a[i - 1].arrival_ms);
        }
    }
    spec.seed = 10;
    const auto c = poissonArrivalTrace(spec);
    EXPECT_NE(a[0].arrival_ms, c[0].arrival_ms);
}

TEST(PoissonTrace, BoundsAndRate)
{
    TraceSpec spec;
    spec.num_requests = 2000;
    spec.rate_per_s = 250.0;
    spec.prompt_min = 16;
    spec.prompt_max = 128;
    spec.decode_min = 4;
    spec.decode_max = 12;
    spec.seed = 4;
    const auto trace = poissonArrivalTrace(spec);

    for (const ServingRequest &r : trace) {
        EXPECT_GE(r.prompt_len, 16);
        EXPECT_LE(r.prompt_len, 128);
        EXPECT_GE(r.decode_steps, 4);
        EXPECT_LE(r.decode_steps, 12);
    }
    // Mean inter-arrival gap of a Poisson process at 250/s is 4 ms;
    // with 2000 samples the empirical mean is within a few percent.
    const double mean_gap_ms =
        trace.back().arrival_ms / (spec.num_requests - 1);
    EXPECT_NEAR(mean_gap_ms, 4.0, 0.5);

    // Per-request seeds must be distinct (index-derived).
    EXPECT_NE(trace[0].seed, trace[1].seed);
    EXPECT_NE(trace[1].seed, trace[2].seed);
}

/** Oracle sparsity should be substantial for LLM-like settings. */
class SparsityRangeTest
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(SparsityRangeTest, WithinExpectedBand)
{
    const auto [conc, min_sparsity] = GetParam();
    WorkloadSpec spec;
    spec.seq_len = 1024;
    spec.query_len = 4;
    spec.concentration = conc;
    spec.locality = 0.6;
    spec.seed = 11;
    const double s = oracleSparsity(generateHead(spec), 1e-3);
    EXPECT_GE(s, min_sparsity);
    EXPECT_LE(s, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Concentrations, SparsityRangeTest,
    ::testing::Values(std::make_pair(0.8, 0.3),
                      std::make_pair(1.25, 0.5),
                      std::make_pair(1.6, 0.6)));

} // namespace
} // namespace pade

/**
 * @file
 * Tests for bidirectional-sparsity bit-serial kernels (paper Eqs. 5-6).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/bit_serial.h"

namespace pade {
namespace {

MatrixI8
randomInt8(int r, int c, uint64_t seed)
{
    Rng rng(seed);
    MatrixI8 m(r, c);
    for (int i = 0; i < r; i++)
        for (int j = 0; j < c; j++)
            m.at(i, j) = static_cast<int8_t>(rng.range(-128, 127));
    return m;
}

TEST(BitSerial, PlaneDeltasSumToExactDot)
{
    MatrixI8 q = randomInt8(1, 64, 1);
    MatrixI8 k = randomInt8(4, 64, 2);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 4; j++) {
        int64_t acc = 0;
        for (int r = 0; r < 8; r++)
            acc += planeDelta(q.row(0), planes, j, r);
        int64_t ref = 0;
        for (int d = 0; d < 64; d++)
            ref += static_cast<int64_t>(q.at(0, d)) * k.at(j, d);
        EXPECT_EQ(acc, ref);
    }
}

TEST(BitSerial, BsEquivalence)
{
    // Eq. (6): 0-mode accumulation must be bit-identical to 1-mode.
    MatrixI8 q = randomInt8(1, 64, 3);
    MatrixI8 k = randomInt8(16, 64, 4);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 16; j++)
        for (int r = 0; r < 8; r++)
            EXPECT_EQ(planeDeltaBs(q.row(0), planes, j, r, 8),
                      planeDelta(q.row(0), planes, j, r));
}

TEST(BitSerial, BsEquivalenceOddSizes)
{
    // Dimensions not divisible by the sub-group size.
    MatrixI8 q = randomInt8(1, 37, 5);
    MatrixI8 k = randomInt8(8, 37, 6);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 8; j++)
        for (int r = 0; r < 8; r++)
            for (int g : {3, 8, 16})
                EXPECT_EQ(planeDeltaBs(q.row(0), planes, j, r, g),
                          planeDelta(q.row(0), planes, j, r));
}

TEST(BitSerial, SelectedBoundedByHalf)
{
    // BS guarantee: selected elements never exceed 50% of the plane.
    MatrixI8 k = randomInt8(32, 64, 7);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 32; j++) {
        for (int r = 0; r < 8; r++) {
            const PlaneWork w = planeWork(planes, j, r, 8, 4);
            EXPECT_LE(w.selected_bs, 32);
            EXPECT_LE(w.selected_bs, w.selected_naive);
        }
    }
}

TEST(BitSerial, SubgroupBoundsSelection)
{
    // Per sub-group of 8, BS selects at most 4 -> one pass through the
    // 4 muxes: cycles_bs is always 1.
    MatrixI8 k = randomInt8(32, 64, 8);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 32; j++) {
        for (int r = 0; r < 8; r++) {
            const PlaneWork w = planeWork(planes, j, r, 8, 4);
            EXPECT_EQ(w.cycles_bs, 1);
            EXPECT_LE(w.cycles_naive, 2);
            EXPECT_GE(w.cycles_naive, w.cycles_bs);
        }
    }
}

TEST(BitSerial, AllOnesPlaneUsesZeroMode)
{
    MatrixI8 k(1, 16);
    k.fill(-1); // all bits set in every plane (two's complement -1)
    BitPlaneSet planes(k, 8);
    for (int r = 0; r < 8; r++) {
        const PlaneWork w = planeWork(planes, 1 - 1, r, 8, 4);
        EXPECT_EQ(w.selected_bs, 0);       // zeros side is empty
        EXPECT_EQ(w.selected_naive, 16);   // ones side is full
        EXPECT_EQ(w.zero_mode_groups, 2);
        EXPECT_EQ(w.cycles_bs, 1);
        EXPECT_EQ(w.cycles_naive, 2);
    }
}

TEST(BitSerial, AllZerosPlaneFree)
{
    MatrixI8 k(1, 16); // zeros
    BitPlaneSet planes(k, 8);
    const PlaneWork w = planeWork(planes, 0, 0, 8, 4);
    EXPECT_EQ(w.selected_bs, 0);
    EXPECT_EQ(w.selected_naive, 0);
    EXPECT_EQ(w.zero_mode_groups, 0);
}

TEST(BitSerial, ZeroModeDeltaForAllOnes)
{
    // With all bits one, plane delta = weight * qsum: 0-mode computes
    // it without touching a single element.
    Rng rng(9);
    MatrixI8 q(1, 16);
    int64_t qsum = 0;
    for (int d = 0; d < 16; d++) {
        q.at(0, d) = static_cast<int8_t>(rng.range(-50, 50));
        qsum += q.at(0, d);
    }
    MatrixI8 k(1, 16);
    k.fill(-1);
    BitPlaneSet planes(k, 8);
    EXPECT_EQ(planeDelta(q.row(0), planes, 0, 0), -128 * qsum);
    EXPECT_EQ(planeDeltaBs(q.row(0), planes, 0, 0, 8), -128 * qsum);
}

/** Property sweep over sub-group/mux combinations. */
class GsatGeometryTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(GsatGeometryTest, WorkAccountingConsistent)
{
    const auto [subgroup, muxes] = GetParam();
    MatrixI8 k = randomInt8(8, 64, 10);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 8; j++) {
        for (int r = 0; r < 8; r++) {
            const PlaneWork w = planeWork(planes, j, r, subgroup,
                                          muxes);
            EXPECT_GE(w.cycles_bs, 1);
            EXPECT_GE(w.cycles_naive, w.cycles_bs);
            EXPECT_LE(w.selected_bs,
                      planes.numCols() / 2 + planes.numCols() %
                      subgroup);
            // Cycle bound: ceil(subgroup/2 / muxes).
            EXPECT_LE(w.cycles_bs,
                      (subgroup / 2 + muxes - 1) / muxes + 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GsatGeometryTest,
    ::testing::Values(std::make_pair(4, 2), std::make_pair(8, 4),
                      std::make_pair(16, 4), std::make_pair(16, 8),
                      std::make_pair(32, 8)));

} // namespace
} // namespace pade

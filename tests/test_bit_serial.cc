/**
 * @file
 * Tests for bidirectional-sparsity bit-serial kernels (paper Eqs. 5-6).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/bit_serial.h"

namespace pade {
namespace {

MatrixI8
randomInt8(int r, int c, uint64_t seed)
{
    Rng rng(seed);
    MatrixI8 m(r, c);
    for (int i = 0; i < r; i++)
        for (int j = 0; j < c; j++)
            m.at(i, j) = static_cast<int8_t>(rng.range(-128, 127));
    return m;
}

/** Random matrix whose values fit a @p bits two's-complement range,
 *  with an adjustable bias toward negative values. */
MatrixI8
randomRanged(int r, int c, int bits, uint64_t seed,
             double negative_frac = 0.5)
{
    Rng rng(seed);
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    MatrixI8 m(r, c);
    for (int i = 0; i < r; i++)
        for (int j = 0; j < c; j++) {
            int v = rng.bernoulli(negative_frac)
                ? static_cast<int>(rng.range(lo, -1))
                : static_cast<int>(rng.range(0, hi));
            m.at(i, j) = static_cast<int8_t>(v);
        }
    return m;
}

TEST(BitSerial, PlaneDeltasSumToExactDot)
{
    MatrixI8 q = randomInt8(1, 64, 1);
    MatrixI8 k = randomInt8(4, 64, 2);
    BitPlaneSet planes(k, 8);
    const QueryPlanes qp(q.row(0));
    for (int j = 0; j < 4; j++) {
        int64_t acc = 0;
        for (int r = 0; r < 8; r++)
            acc += planeDelta(qp, planes, j, r);
        int64_t ref = 0;
        for (int d = 0; d < 64; d++)
            ref += static_cast<int64_t>(q.at(0, d)) * k.at(j, d);
        EXPECT_EQ(acc, ref);
    }
}

TEST(BitSerial, PopcountMatchesScalarExactly)
{
    // The word-parallel kernel must be bit-identical to the scalar
    // reference across random shapes, key bit-widths 2..8, and
    // negative-heavy query/key distributions.
    uint64_t seed = 100;
    for (int bits = 2; bits <= 8; bits++) {
        for (int cols : {1, 8, 37, 64, 65, 128, 200}) {
            for (double neg : {0.1, 0.5, 0.9}) {
                MatrixI8 q = randomRanged(1, cols, 8, seed++, neg);
                MatrixI8 k = randomRanged(6, cols, bits, seed++, neg);
                BitPlaneSet planes(k, bits);
                const QueryPlanes qp(q.row(0));
                for (int j = 0; j < 6; j++)
                    for (int r = 0; r < bits; r++)
                        EXPECT_EQ(
                            planeDelta(qp, planes, j, r),
                            planeDeltaScalar(q.row(0), planes, j, r))
                            << "bits=" << bits << " cols=" << cols
                            << " neg=" << neg << " j=" << j
                            << " r=" << r;
            }
        }
    }
}

TEST(BitSerial, QueryPlanesReuseAndNarrowWidth)
{
    // assign() must repack in place, and narrow-range rows must pack
    // into fewer planes without changing any kernel result.
    MatrixI8 wide = randomInt8(1, 96, 11);
    MatrixI8 narrow = randomRanged(1, 96, 4, 12);
    MatrixI8 k = randomInt8(4, 96, 13);
    BitPlaneSet planes(k, 8);

    QueryPlanes qp(wide.row(0));
    EXPECT_EQ(qp.numCols(), 96);
    for (int j = 0; j < 4; j++)
        for (int r = 0; r < 8; r++)
            EXPECT_EQ(planeDelta(qp, planes, j, r),
                      planeDeltaScalar(wide.row(0), planes, j, r));

    qp.assign(narrow.row(0));
    EXPECT_LE(qp.numPlanes(), 4);
    for (int j = 0; j < 4; j++)
        for (int r = 0; r < 8; r++)
            EXPECT_EQ(planeDelta(qp, planes, j, r),
                      planeDeltaScalar(narrow.row(0), planes, j, r));
}

TEST(BitSerial, BsEquivalence)
{
    // Eq. (6): 0-mode accumulation must be bit-identical to 1-mode.
    MatrixI8 q = randomInt8(1, 64, 3);
    MatrixI8 k = randomInt8(16, 64, 4);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 16; j++)
        for (int r = 0; r < 8; r++)
            EXPECT_EQ(planeDeltaBs(q.row(0), planes, j, r, 8),
                      planeDeltaScalar(q.row(0), planes, j, r));
}

TEST(BitSerial, BsEquivalenceOddSizes)
{
    // Dimensions not divisible by the sub-group size; include
    // sub-groups that straddle 64-bit word boundaries (g = 3 with
    // cols > 64) and the maximum sub-group of one whole word.
    MatrixI8 q = randomInt8(1, 97, 5);
    MatrixI8 k = randomInt8(8, 97, 6);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 8; j++)
        for (int r = 0; r < 8; r++)
            for (int g : {3, 8, 16, 64})
                EXPECT_EQ(planeDeltaBs(q.row(0), planes, j, r, g),
                          planeDeltaScalar(q.row(0), planes, j, r));
}

TEST(BitSerial, SelectedBoundedByHalf)
{
    // BS guarantee: selected elements never exceed 50% of the plane.
    MatrixI8 k = randomInt8(32, 64, 7);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 32; j++) {
        for (int r = 0; r < 8; r++) {
            const PlaneWork w = planeWork(planes, j, r, 8, 4);
            EXPECT_LE(w.selected_bs, 32);
            EXPECT_LE(w.selected_bs, w.selected_naive);
        }
    }
}

TEST(BitSerial, SubgroupBoundsSelection)
{
    // Per sub-group of 8, BS selects at most 4 -> one pass through the
    // 4 muxes: cycles_bs is always 1.
    MatrixI8 k = randomInt8(32, 64, 8);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 32; j++) {
        for (int r = 0; r < 8; r++) {
            const PlaneWork w = planeWork(planes, j, r, 8, 4);
            EXPECT_EQ(w.cycles_bs, 1);
            EXPECT_LE(w.cycles_naive, 2);
            EXPECT_GE(w.cycles_naive, w.cycles_bs);
        }
    }
}

TEST(BitSerial, AllOnesPlaneUsesZeroMode)
{
    MatrixI8 k(1, 16);
    k.fill(-1); // all bits set in every plane (two's complement -1)
    BitPlaneSet planes(k, 8);
    for (int r = 0; r < 8; r++) {
        const PlaneWork w = planeWork(planes, 1 - 1, r, 8, 4);
        EXPECT_EQ(w.selected_bs, 0);       // zeros side is empty
        EXPECT_EQ(w.selected_naive, 16);   // ones side is full
        EXPECT_EQ(w.zero_mode_groups, 2);
        EXPECT_EQ(w.cycles_bs, 1);
        EXPECT_EQ(w.cycles_naive, 2);
    }
}

TEST(BitSerial, AllZerosPlaneFree)
{
    MatrixI8 k(1, 16); // zeros
    BitPlaneSet planes(k, 8);
    const PlaneWork w = planeWork(planes, 0, 0, 8, 4);
    EXPECT_EQ(w.selected_bs, 0);
    EXPECT_EQ(w.selected_naive, 0);
    EXPECT_EQ(w.zero_mode_groups, 0);
}

TEST(BitSerial, ZeroModeDeltaForAllOnes)
{
    // With all bits one, plane delta = weight * qsum: 0-mode computes
    // it without touching a single element.
    Rng rng(9);
    MatrixI8 q(1, 16);
    int64_t qsum = 0;
    for (int d = 0; d < 16; d++) {
        q.at(0, d) = static_cast<int8_t>(rng.range(-50, 50));
        qsum += q.at(0, d);
    }
    MatrixI8 k(1, 16);
    k.fill(-1);
    BitPlaneSet planes(k, 8);
    EXPECT_EQ(planeDelta(QueryPlanes(q.row(0)), planes, 0, 0),
              -128 * qsum);
    EXPECT_EQ(planeDeltaScalar(q.row(0), planes, 0, 0), -128 * qsum);
    EXPECT_EQ(planeDeltaBs(q.row(0), planes, 0, 0, 8), -128 * qsum);
}

/** Property sweep over sub-group/mux combinations. */
class GsatGeometryTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(GsatGeometryTest, WorkAccountingConsistent)
{
    const auto [subgroup, muxes] = GetParam();
    MatrixI8 k = randomInt8(8, 64, 10);
    BitPlaneSet planes(k, 8);
    for (int j = 0; j < 8; j++) {
        for (int r = 0; r < 8; r++) {
            const PlaneWork w = planeWork(planes, j, r, subgroup,
                                          muxes);
            EXPECT_GE(w.cycles_bs, 1);
            EXPECT_GE(w.cycles_naive, w.cycles_bs);
            EXPECT_LE(w.selected_bs,
                      planes.numCols() / 2 + planes.numCols() %
                      subgroup);
            // Cycle bound: ceil(subgroup/2 / muxes).
            EXPECT_LE(w.cycles_bs,
                      (subgroup / 2 + muxes - 1) / muxes + 1);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, GsatGeometryTest,
    ::testing::Values(std::make_pair(4, 2), std::make_pair(8, 4),
                      std::make_pair(16, 4), std::make_pair(16, 8),
                      std::make_pair(32, 8)));

} // namespace
} // namespace pade

/**
 * @file
 * Tests for the QK kernel dispatch seam (core/simd/qk_dispatch.h) and
 * the AVX2 backend's bit-exactness against the scalar oracle,
 * including the remainder/tail shapes that exercise masked loads and
 * padded storage: head_dims that are not multiples of the SIMD width
 * and the boundary between the value-domain and plane-domain kernels.
 *
 * Every parity test also passes in non-AVX2 builds (or on non-AVX2
 * hosts): the *Simd entry points then fall back to the popcount
 * kernel, which must produce the same values anyway.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.h"
#include "core/bit_serial.h"
#include "core/simd/cpu_features.h"
#include "core/simd/qk_dispatch.h"
#include "quant/bitplane.h"

namespace pade {
namespace {

/** Random matrix whose values fit a @p bits two's-complement range,
 *  with an adjustable bias toward negative values. */
MatrixI8
randomRanged(int r, int c, int bits, uint64_t seed,
             double negative_frac = 0.5)
{
    Rng rng(seed);
    const int lo = -(1 << (bits - 1));
    const int hi = (1 << (bits - 1)) - 1;
    MatrixI8 m(r, c);
    for (int i = 0; i < r; i++)
        for (int j = 0; j < c; j++) {
            int v = rng.bernoulli(negative_frac)
                ? static_cast<int>(rng.range(lo, -1))
                : static_cast<int>(rng.range(0, hi));
            m.at(i, j) = static_cast<int8_t>(v);
        }
    return m;
}

/** RAII environment-variable override (restores on scope exit). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        if (old) {
            had_old_ = true;
            old_ = old;
        }
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }
    ~ScopedEnv()
    {
        if (had_old_)
            ::setenv(name_, old_.c_str(), 1);
        else
            ::unsetenv(name_);
    }

  private:
    const char *name_;
    bool had_old_ = false;
    std::string old_;
};

TEST(QkDispatch, KernelNamesRoundTrip)
{
    for (QkKernel k : {QkKernel::kScalar, QkKernel::kPopcount,
                       QkKernel::kSimd}) {
        const auto parsed = qkKernelFromName(qkKernelName(k));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, k);
    }
    EXPECT_EQ(qkKernelFromName("SIMD"), QkKernel::kSimd);
    EXPECT_EQ(qkKernelFromName("Scalar"), QkKernel::kScalar);
    EXPECT_FALSE(qkKernelFromName("auto").has_value());
    EXPECT_FALSE(qkKernelFromName("").has_value());
    EXPECT_FALSE(qkKernelFromName("avx512").has_value());
}

TEST(QkDispatch, DefaultMatchesAvailability)
{
    EXPECT_EQ(defaultQkKernel(), qkSimdAvailable()
                  ? QkKernel::kSimd
                  : QkKernel::kPopcount);
}

TEST(QkDispatch, SimdAvailabilityImpliesCpuSupport)
{
    // qkSimdAvailable() must never report true without both the
    // compiled backend and full runtime (CPU + OS) support.
    if (qkSimdAvailable()) {
        const simd::CpuFeatures &f = simd::cpuFeatures();
        EXPECT_TRUE(f.avx2);
        EXPECT_TRUE(f.os_ymm);
    }
}

TEST(QkDispatch, ResolvePassesThroughWithoutEnv)
{
    ScopedEnv env(kQkKernelEnv, nullptr);
    EXPECT_EQ(resolveQkKernel(QkKernel::kScalar), QkKernel::kScalar);
    EXPECT_EQ(resolveQkKernel(QkKernel::kPopcount),
              QkKernel::kPopcount);
    // kSimd resolves to itself when available, kPopcount otherwise —
    // never to something that cannot execute.
    const QkKernel resolved = resolveQkKernel(QkKernel::kSimd);
    EXPECT_EQ(resolved, qkSimdAvailable() ? QkKernel::kSimd
                                          : QkKernel::kPopcount);
}

TEST(QkDispatch, EnvOverridesConfiguredKernel)
{
    {
        ScopedEnv env(kQkKernelEnv, "scalar");
        EXPECT_EQ(resolveQkKernel(QkKernel::kSimd), QkKernel::kScalar);
    }
    {
        ScopedEnv env(kQkKernelEnv, "POPCOUNT");
        EXPECT_EQ(resolveQkKernel(QkKernel::kScalar),
                  QkKernel::kPopcount);
    }
    {
        // "auto" resolves to the best available backend.
        ScopedEnv env(kQkKernelEnv, "auto");
        EXPECT_EQ(resolveQkKernel(QkKernel::kScalar),
                  defaultQkKernel());
    }
    {
        // Unknown values are ignored (with a one-time warning).
        ScopedEnv env(kQkKernelEnv, "gpu");
        EXPECT_EQ(resolveQkKernel(QkKernel::kScalar),
                  QkKernel::kScalar);
    }
    {
        // An env-forced simd request still clamps to availability.
        ScopedEnv env(kQkKernelEnv, "simd");
        EXPECT_EQ(resolveQkKernel(QkKernel::kScalar),
                  qkSimdAvailable() ? QkKernel::kSimd
                                    : QkKernel::kPopcount);
    }
}

TEST(QkDispatch, PlaneStorageIs32ByteAligned)
{
    // The alignment contract the SIMD backend relies on, checked
    // through the public span accessors across tail shapes.
    for (int cols : {1, 63, 65, 127, 129, 256, 300}) {
        MatrixI8 k = randomRanged(3, cols, 8, 1000 + cols);
        BitPlaneSet planes(k, 8);
        for (int row = 0; row < 3; row++)
            for (int r = 0; r < 8; r++)
                EXPECT_EQ(reinterpret_cast<std::uintptr_t>(
                              planes.plane(row, r).data()) %
                              32,
                          0u)
                    << "cols=" << cols;
        MatrixI8 q = randomRanged(1, cols, 8, 2000 + cols);
        const QueryPlanes qp(q.row(0));
        for (int t = 0; t < qp.numPlanes(); t++)
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(
                          qp.plane(t).data()) %
                          32,
                      0u)
                << "cols=" << cols;
    }
}

/**
 * Parameterized over head_dim: every shape must be bit-identical
 * across all three kernels. The values deliberately straddle the
 * SIMD width boundaries — 65/127 leave masked remainders in the
 * value-domain kernel, 257/300 exercise the plane-domain wide path's
 * tail chunk, and 1/3 are degenerate single-word rows.
 */
class SimdTailTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SimdTailTest, MaskedSumSimdMatchesOracle)
{
    const int cols = GetParam();
    for (int bits : {2, 5, 8}) {
        MatrixI8 q = randomRanged(1, cols, 8, 50 + cols, 0.6);
        MatrixI8 k = randomRanged(4, cols, bits, 60 + cols);
        BitPlaneSet planes(k, bits);
        const QueryPlanes qp(q.row(0));
        for (int j = 0; j < 4; j++)
            for (int r = 0; r < bits; r++) {
                int64_t ref = 0;
                for (int d = 0; d < cols; d++)
                    if (planes.bit(j, r, d))
                        ref += q.at(0, d);
                const auto mask = planes.plane(j, r);
                EXPECT_EQ(qp.maskedSum(mask), ref)
                    << "cols=" << cols << " bits=" << bits;
                EXPECT_EQ(qp.maskedSumSimd(mask), ref)
                    << "cols=" << cols << " bits=" << bits;
            }
    }
}

TEST_P(SimdTailTest, PlaneDeltaSimdMatchesScalar)
{
    const int cols = GetParam();
    for (int bits : {2, 4, 8}) {
        MatrixI8 q = randomRanged(1, cols, 8, 70 + cols, 0.7);
        MatrixI8 k = randomRanged(3, cols, bits, 80 + cols, 0.7);
        BitPlaneSet planes(k, bits);
        const QueryPlanes qp(q.row(0));
        for (int j = 0; j < 3; j++)
            for (int r = 0; r < bits; r++) {
                const int64_t ref =
                    planeDeltaScalar(q.row(0), planes, j, r);
                EXPECT_EQ(planeDelta(qp, planes, j, r), ref);
                EXPECT_EQ(planeDeltaSimd(qp, planes, j, r), ref)
                    << "cols=" << cols << " bits=" << bits
                    << " j=" << j << " r=" << r;
            }
    }
}

TEST_P(SimdTailTest, PartialAndExactDotSimdMatchScalar)
{
    const int cols = GetParam();
    for (int bits : {2, 4, 8}) {
        MatrixI8 q = randomRanged(1, cols, 8, 90 + cols);
        MatrixI8 k = randomRanged(3, cols, bits, 95 + cols);
        BitPlaneSet planes(k, bits);
        const QueryPlanes qp(q.row(0));
        for (int j = 0; j < 3; j++) {
            for (int r = 0; r < bits; r++)
                EXPECT_EQ(partialDotSimd(qp, planes, j, r),
                          partialDotScalar(q.row(0), planes, j, r))
                    << "cols=" << cols << " bits=" << bits
                    << " j=" << j << " r=" << r;
            int64_t ref = 0;
            for (int d = 0; d < cols; d++)
                ref += static_cast<int64_t>(q.at(0, d)) * k.at(j, d);
            EXPECT_EQ(exactDotSimd(qp, planes, j), ref);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(TailShapes, SimdTailTest,
                         ::testing::Values(1, 3, 31, 63, 64, 65, 96,
                                           127, 128, 129, 255, 256,
                                           257, 300, 512));

TEST(QkSimd, NarrowedQueryWidthsMatch)
{
    // assign() without an explicit width narrows to the minimal
    // covering range; the value mirror must reflect the (possibly
    // truncated) plane reconstruction, keeping all kernels identical.
    for (int qbits : {2, 3, 4, 6, 8}) {
        const int cols = 130;
        MatrixI8 q = randomRanged(1, cols, qbits, 300 + qbits);
        MatrixI8 k = randomRanged(2, cols, 8, 310 + qbits);
        BitPlaneSet planes(k, 8);
        QueryPlanes qp;
        qp.assign(q.row(0));
        EXPECT_LE(qp.numPlanes(), qbits + 1);
        for (int j = 0; j < 2; j++)
            for (int r = 0; r < 8; r++)
                EXPECT_EQ(planeDeltaSimd(qp, planes, j, r),
                          planeDeltaScalar(q.row(0), planes, j, r))
                    << "qbits=" << qbits;
    }
}

TEST(QkSimd, ForcedWidthTruncationStaysConsistent)
{
    // A caller-forced width that truncates values must keep the
    // plane-domain and value-domain kernels mutually consistent
    // (both see the truncated reconstruction).
    MatrixI8 q = randomRanged(1, 96, 8, 400);
    MatrixI8 k = randomRanged(2, 96, 8, 401);
    BitPlaneSet planes(k, 8);
    QueryPlanes qp;
    qp.assign(q.row(0), 4); // truncates 8-bit values to 4 bits
    for (int j = 0; j < 2; j++)
        for (int r = 0; r < 8; r++)
            EXPECT_EQ(qp.maskedSumSimd(planes.plane(j, r)),
                      qp.maskedSum(planes.plane(j, r)));
}

TEST(QkSimd, ReusedQueryPlanesStayConsistent)
{
    // Workspace reuse across different shapes must rebuild the value
    // mirror correctly (stale bytes from a longer previous row must
    // not leak into the padding).
    QueryPlanes qp;
    for (int cols : {300, 65, 128, 1, 257, 64}) {
        MatrixI8 q = randomRanged(1, cols, 8, 500 + cols, 0.8);
        MatrixI8 k = randomRanged(2, cols, 8, 510 + cols);
        BitPlaneSet planes(k, 8);
        qp.assign(q.row(0));
        for (int j = 0; j < 2; j++) {
            EXPECT_EQ(exactDotSimd(qp, planes, j),
                      exactDotScalar(q.row(0), planes, j))
                << "cols=" << cols;
        }
    }
}

} // namespace
} // namespace pade

/**
 * @file
 * Property tests of the cross-session prefix index (radix trie of
 * shared, ref-counted KV pages): longest-match lookup, first-publisher
 * idempotence, reader refcount discipline (underflow aborts), and the
 * LRU-leaf eviction rule that a shared node may only disappear once
 * its last reader detached — while the page *memory* additionally
 * survives any index eviction as long as a cache references it.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "serving/kv_cache.h"
#include "serving/prefix_index.h"

namespace pade {
namespace {

KvCacheConfig
pageConfig()
{
    KvCacheConfig cfg;
    cfg.head_dim = 8;
    cfg.bits = 4;
    cfg.page_tokens = 4;
    cfg.v_scale = 0.5f;
    return cfg;
}

/** Build one FULL page with deterministic rows derived from @p tag. */
std::shared_ptr<const KvPage>
makePage(uint8_t tag)
{
    const KvCacheConfig cfg = pageConfig();
    KvCache cache(cfg);
    std::vector<int8_t> k(static_cast<std::size_t>(cfg.head_dim));
    std::vector<int8_t> v(static_cast<std::size_t>(cfg.head_dim));
    for (int t = 0; t < cfg.page_tokens; t++) {
        for (int d = 0; d < cfg.head_dim; d++) {
            k[static_cast<std::size_t>(d)] =
                static_cast<int8_t>((tag + t + d) % 7 - 3);
            v[static_cast<std::size_t>(d)] =
                static_cast<int8_t>((tag * 3 + t - d) % 9 - 4);
        }
        cache.appendToken(k, v);
    }
    return cache.sharePage(0);
}

std::vector<std::shared_ptr<const KvPage>>
makePages(uint8_t tag, int count)
{
    std::vector<std::shared_ptr<const KvPage>> pages;
    for (int i = 0; i < count; i++)
        pages.push_back(makePage(static_cast<uint8_t>(tag + i)));
    return pages;
}

TEST(PrefixIndex, EmptyIndexMissesAndCounts)
{
    PrefixIndex index;
    const std::vector<uint64_t> chain{1, 2, 3};
    const PrefixMatch match = index.acquire(chain);
    EXPECT_EQ(match.pages, 0);
    EXPECT_TRUE(match.shared.empty());
    EXPECT_EQ(index.readersOf(chain), -1);

    const PrefixIndexStats st = index.stats();
    EXPECT_EQ(st.lookups, 1u);
    EXPECT_EQ(st.miss_lookups, 1u);
    EXPECT_EQ(st.hit_pages, 0u);
    EXPECT_EQ(st.nodes, 0);
}

TEST(PrefixIndex, LongestMatchStopsAtDivergence)
{
    PrefixIndex index;
    const std::vector<uint64_t> chain{10, 20, 30};
    const auto pages = makePages(1, 3);
    EXPECT_EQ(index.publish(chain, pages), 3);

    // Full-chain hit returns the exact published references.
    PrefixMatch full = index.acquire(chain);
    ASSERT_EQ(full.pages, 3);
    ASSERT_EQ(full.shared.size(), 3u);
    for (int d = 0; d < 3; d++)
        EXPECT_EQ(full.shared[static_cast<std::size_t>(d)].get(),
                  pages[static_cast<std::size_t>(d)].get());

    // A chain diverging at depth 2 matches exactly its shared prefix.
    const std::vector<uint64_t> diverged{10, 20, 99};
    PrefixMatch part = index.acquire(diverged);
    EXPECT_EQ(part.pages, 2);
    EXPECT_EQ(part.shared.size(), 2u);

    // And one diverging at the root matches nothing.
    const std::vector<uint64_t> other{77, 20, 30};
    EXPECT_EQ(index.acquire(other).pages, 0);

    const PrefixIndexStats st = index.stats();
    EXPECT_EQ(st.lookups, 3u);
    EXPECT_EQ(st.hit_pages, 5u);
    EXPECT_EQ(st.miss_lookups, 1u);
    EXPECT_EQ(st.nodes, 3);
    EXPECT_EQ(st.bytes, 3 * kvPageBytes(*pages[0]));
}

TEST(PrefixIndex, FirstPublisherWins)
{
    PrefixIndex index;
    const std::vector<uint64_t> chain{5, 6};
    const auto first = makePages(10, 2);
    const auto second = makePages(40, 2);
    EXPECT_EQ(index.publish(chain, first), 2);
    EXPECT_EQ(index.publish(chain, second), 0);
    EXPECT_EQ(index.stats().rejected, 2u);

    // Lookups converge on the first publisher's pages.
    const PrefixMatch match = index.acquire(chain);
    ASSERT_EQ(match.pages, 2);
    EXPECT_EQ(match.shared[0].get(), first[0].get());
    EXPECT_EQ(match.shared[1].get(), first[1].get());

    // A longer chain extending a published prefix registers only the
    // new depths.
    const std::vector<uint64_t> longer{5, 6, 7};
    EXPECT_EQ(index.publish(longer, makePages(60, 3)), 1);
    EXPECT_EQ(index.stats().nodes, 3);
}

TEST(PrefixIndex, ReaderCountsFollowAcquireAndRelease)
{
    PrefixIndex index;
    const std::vector<uint64_t> chain{3, 4};
    index.publish(chain, makePages(2, 2));
    EXPECT_EQ(index.readersOf(chain), 0);

    (void)index.acquire(chain);
    (void)index.acquire(chain);
    EXPECT_EQ(index.readersOf(chain), 2);
    // A shorter acquire only references the nodes it matched.
    const std::vector<uint64_t> head{3};
    (void)index.acquire(head);
    EXPECT_EQ(index.readersOf(head), 3);
    EXPECT_EQ(index.readersOf(chain), 2);

    index.release(chain, 2);
    index.release(chain, 2);
    index.release(head, 1);
    EXPECT_EQ(index.readersOf(head), 0);
    EXPECT_EQ(index.readersOf(chain), 0);
    // Releasing a zero-depth (miss) acquire is a no-op.
    index.release(chain, 0);
}

TEST(PrefixIndexDeathTest, OverReleaseAborts)
{
    PrefixIndex index;
    const std::vector<uint64_t> chain{8};
    index.publish(chain, makePages(7, 1));
    (void)index.acquire(chain);
    index.release(chain, 1);
    // The refcount is now zero: a second release is an underflow and
    // must abort (another session's pages could be evicted under it).
    EXPECT_DEATH(index.release(chain, 1), "PADE_CHECK");
}

TEST(PrefixIndex, EvictionSparesLiveReadersThenReclaimsLru)
{
    const std::size_t page_bytes = kvPageBytes(*makePage(0));
    PrefixIndexOptions opt;
    opt.max_bytes = 2 * page_bytes; // room for two single-page chains
    PrefixIndex index(opt);

    const std::vector<uint64_t> a{100};
    const std::vector<uint64_t> b{200};
    const std::vector<uint64_t> c{300};
    index.publish(a, makePages(1, 1));
    const PrefixMatch held = index.acquire(a); // pin A

    index.publish(b, makePages(2, 1));
    EXPECT_EQ(index.stats().evictions, 0u);

    // C pushes past the budget: B (LRU, unreferenced leaf) goes, A is
    // protected by its live reader even though it is least recent.
    index.publish(c, makePages(3, 1));
    EXPECT_EQ(index.stats().evictions, 1u);
    EXPECT_EQ(index.readersOf(a), 1);
    EXPECT_EQ(index.readersOf(b), -1);
    EXPECT_EQ(index.readersOf(c), 0);

    // Once A's last reader detaches it becomes the LRU victim of the
    // next over-budget publish.
    index.release(a, 1);
    const std::vector<uint64_t> d{400};
    index.publish(d, makePages(4, 1));
    EXPECT_EQ(index.readersOf(a), -1);
    EXPECT_EQ(index.readersOf(c), 0);
    EXPECT_EQ(index.readersOf(d), 0);
    EXPECT_EQ(index.stats().evictions, 2u);
    EXPECT_LE(index.stats().bytes, opt.max_bytes);

    // Eviction unmapped A from lookups, but the held reference keeps
    // the page memory itself alive and readable.
    ASSERT_EQ(held.shared.size(), 1u);
    EXPECT_TRUE(held.shared[0]->full());
    EXPECT_EQ(held.shared[0]->values.rows(),
              pageConfig().page_tokens);
}

TEST(PrefixIndex, EvictionNeverOrphansDeeperMatches)
{
    const std::size_t page_bytes = kvPageBytes(*makePage(0));
    PrefixIndexOptions opt;
    opt.max_bytes = 2 * page_bytes;
    PrefixIndex index(opt);

    // A two-deep chain over budget by one page: only the *leaf* may
    // go — evicting the root under the leaf would leave acquire()
    // able to reach depth 2 without depth 1.
    const std::vector<uint64_t> chain{1, 2, 3};
    index.publish(chain, makePages(9, 3));
    EXPECT_EQ(index.stats().evictions, 1u);
    EXPECT_EQ(index.acquire(chain).pages, 2);
    const PrefixIndexStats st = index.stats();
    EXPECT_EQ(st.nodes, 2);
    EXPECT_LE(st.bytes, opt.max_bytes);
}

} // namespace
} // namespace pade
